// Command nocsim runs a single NoC simulation and prints its
// performance indexes.
//
// Usage:
//
//	nocsim -topo spidergon -n 16 -traffic uniform -lambda 0.02 \
//	       -warmup 1000 -cycles 10000 -seed 1
//
// Topologies: ring, spidergon, mesh, imesh, fmesh, torus.
// Traffic: uniform, or hotspot with -targets "0,8".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gonoc/internal/core"
	"gonoc/internal/prof"
	"gonoc/internal/telemetry"
)

func main() {
	var (
		topo    = flag.String("topo", "spidergon", "topology: ring|spidergon|mesh|imesh|fmesh|torus")
		n       = flag.Int("n", 16, "number of nodes")
		cols    = flag.Int("cols", 0, "mesh/torus columns (0 = balanced factorisation)")
		rows    = flag.Int("rows", 0, "mesh/torus rows (0 = balanced factorisation)")
		tk      = flag.String("traffic", "uniform", "traffic: uniform|hotspot")
		targets = flag.String("targets", "", "hotspot targets, comma separated (default: paper placement)")
		lambda  = flag.Float64("lambda", 0.01, "packets/cycle per source")
		flits   = flag.Float64("flitrate", 0, "per-source flits/cycle (overrides -lambda when > 0)")
		pkt     = flag.Int("pkt", 6, "packet length in flits")
		outbuf  = flag.Int("outbuf", 3, "output queue capacity in flits")
		inbuf   = flag.Int("inbuf", 1, "input buffer capacity in flits")
		warmup  = flag.Uint64("warmup", 1000, "warm-up cycles (unmeasured)")
		cycles  = flag.Uint64("cycles", 10000, "measured cycles")
		seed    = flag.Uint64("seed", 1, "random seed")
		jsonOut = flag.Bool("json", false, "emit the result as JSON")
		scnFile = flag.String("config", "", "JSON scenario file (overrides other flags)")
		stepPar = flag.Int("step-parallel", 0, "router shards for the domain-decomposed Step engine with credit-based cross-shard speculation (0 = serial, -1 = auto: min(GOMAXPROCS, routers/4); results are identical)")
		telFile = flag.String("telemetry", "", "write a per-cycle telemetry capture to this file (decode with noctsd)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	// Telemetry writes through one buffered file writer; finish()
	// flushes and reports the capture size after the run completes.
	var (
		telOpts  *telemetry.Options
		telStats telemetry.Stats
		telDone  = func() {}
	)
	if *telFile != "" {
		f, err := os.Create(*telFile)
		if err != nil {
			fatal(err)
		}
		bw := bufio.NewWriter(f)
		telOpts = &telemetry.Options{W: bw, Stats: &telStats}
		telDone = func() {
			if err := bw.Flush(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "nocsim: telemetry: %d samples in %d chunks, %d bytes -> %s\n",
				telStats.Samples, telStats.Chunks, telStats.Bytes, *telFile)
		}
	}

	if *scnFile != "" {
		data, err := os.ReadFile(*scnFile)
		if err != nil {
			fatal(err)
		}
		scenarios, err := core.ReadScenarios(data)
		if err != nil {
			fatal(err)
		}
		if telOpts != nil && len(scenarios) != 1 {
			fatal(fmt.Errorf("-telemetry captures a single scenario; %s has %d", *scnFile, len(scenarios)))
		}
		for _, sc := range scenarios {
			sc.StepParallel = *stepPar
			sc.Telemetry = telOpts
			r, err := core.Run(sc)
			if err != nil {
				fatal(err)
			}
			if *jsonOut {
				if err := core.WriteResultJSON(os.Stdout, r); err != nil {
					fatal(err)
				}
			} else {
				report(sc, r)
			}
		}
		telDone()
		return
	}

	s := core.NewScenario(core.TopologyKind(*topo), *n, core.TrafficKind(*tk), *lambda)
	s.StepParallel = *stepPar
	s.Cols, s.Rows = *cols, *rows
	s.Warmup, s.Measure, s.Seed = *warmup, *cycles, *seed
	s.Config.PacketLen = *pkt
	s.Config.OutBufCap = *outbuf
	s.Config.InBufCap = *inbuf
	if *flits > 0 {
		s.Lambda = *flits / float64(*pkt)
	}
	if s.Traffic == core.HotSpotTraffic {
		if *targets != "" {
			hs, err := parseTargets(*targets)
			if err != nil {
				fatal(err)
			}
			s.HotSpots = hs
		} else {
			s.HotSpots = []int{core.SingleHotspot(s.Topo, s.Nodes, false, s.Cols, s.Rows)}
		}
	}

	s.Telemetry = telOpts
	r, err := core.Run(s)
	if err != nil {
		fatal(err)
	}
	telDone()
	if *jsonOut {
		if err := core.WriteResultJSON(os.Stdout, r); err != nil {
			fatal(err)
		}
		return
	}
	report(s, r)
}

func report(s core.Scenario, r core.Result) {
	fmt.Printf("scenario            %s\n", s.Label())
	fmt.Printf("topology            %s (%d sources)\n", r.TopologyName, r.Sources)
	fmt.Printf("offered load        %.4f flits/cycle (%.4f per source)\n", r.OfferedFlitRate, r.OfferedPerSource)
	fmt.Printf("accepted load       %.4f flits/cycle\n", r.AcceptedFlitRate)
	fmt.Printf("throughput          %.4f flits/cycle (%.4f per node, %.4f packets/cycle)\n",
		r.Throughput, r.ThroughputPerNode, r.PacketRate)
	fmt.Printf("latency mean        %.2f cycles (p50 %.1f, p95 %.1f; network-only %.2f)\n",
		r.MeanLatency, r.P50Latency, r.P95Latency, r.MeanNetLatency)
	fmt.Printf("mean hops           %.3f\n", r.MeanHops)
	fmt.Printf("packets             injected %d, ejected %d, source-blocked cycles %d\n",
		r.InjectedPackets, r.EjectedPackets, r.SourceBlocked)
	fmt.Printf("link utilisation    mean %.4f, max %.4f flits/cycle (%d traversals)\n",
		r.MeanLinkUtil, r.MaxLinkUtil, r.LinkTraversals)
	fmt.Printf("energy estimate     %.2f per packet, %.0f total (default cost model)\n",
		r.EnergyPerPacket, r.TotalEnergy)
}

func parseTargets(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad target %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsim:", err)
	os.Exit(1)
}
