// Command nocsweep runs an injection-rate campaign over one or more
// topologies and prints a throughput/latency table (or CSV), plus the
// measured saturation point. It is the workhorse behind custom versions
// of the paper's Figures 6-11: replicated runs, confidence intervals,
// machine-readable JSONL output, a content-addressed result cache,
// deterministic sharding across processes, and adaptive replication
// and grid refinement.
//
// Usage:
//
//	nocsweep -topo ring,spidergon,mesh -n 16 -traffic uniform \
//	         -rates 0.05,0.1,0.2,0.3,0.4 -csv
//	nocsweep -topo ring,spidergon,mesh -n 16 -reps 5 -out results.jsonl
//	nocsweep -topo spidergon -n 16 -traffic hotspot -saturation
//	nocsweep -reps 3 -ci-target 0.05 -cache /tmp/sweep   # adaptive reps
//	nocsweep -shard 0/2 -out s0.jsonl                     # one shard...
//	nocsweep -shard 1/2 -out s1.jsonl                     # ...its twin
//	nocsweep -merge s0.jsonl,s1.jsonl -out merged.jsonl   # == unsharded
//	nocsweep -workers 4 -out merged.jsonl                 # supervised fan-out
//
// -workers N runs the campaign as a supervised multi-process fan-out:
// the process becomes a coordinator that spawns N copies of itself in
// -worker mode, leases deterministic shards to them over
// stdin/stdout, restarts crashed workers with capped backoff, kills
// and re-leases hung ones past their heartbeat deadline, re-leases
// straggler shards to idle workers, and streams the merged output —
// byte-identical to the unsharded run — as shards complete. A shard
// that exhausts its attempts degrades to running in the coordinator
// process, so the campaign still completes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"gonoc/internal/analysis"
	"gonoc/internal/core"
	"gonoc/internal/dist"
	"gonoc/internal/exp"
	"gonoc/internal/prof"
	"gonoc/internal/stats"
)

func main() {
	var (
		topos    = flag.String("topo", "ring,spidergon,mesh", "comma-separated topology kinds")
		ns       = flag.String("n", "16", "comma-separated node counts")
		tk       = flag.String("traffic", "uniform", "traffic: uniform|hotspot")
		rates    = flag.String("rates", "0.05,0.1,0.15,0.2,0.3,0.4,0.5", "per-source flits/cycle points")
		reps     = flag.Int("reps", 1, "replications per point (independent seeds)")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		stepPar  = flag.Int("step-parallel", 0, "router shards per simulation (credit-based intra-scenario parallelism; >1 divides the -parallel budget, -1 = auto width per scenario)")
		out      = flag.String("out", "", "write per-run and summary records as JSONL to this file")
		sqlOut   = flag.String("sqlite", "", "archive per-run and summary records as a SQLite database at this path")
		csv      = flag.Bool("csv", false, "CSV output")
		lat      = flag.Bool("latency", false, "report latency instead of throughput")
		sat      = flag.Bool("saturation", false, "also search the measured saturation rate per topology")
		warmup   = flag.Uint64("warmup", 1000, "warm-up cycles")
		measure  = flag.Uint64("measure", 10000, "measured cycles")
		seed     = flag.Uint64("seed", 1, "seed")
		shard    = flag.String("shard", "", "run one shard i/n of the campaign (emits run records only)")
		cacheDir = flag.String("cache", "", "directory for the content-addressed result cache")
		ciTarget = flag.Float64("ci-target", 0, "adaptive replication: target CI95/mean ratio (0 = fixed reps)")
		maxReps  = flag.Int("max-reps", 0, "cap on adaptive replications per point (0 = 4x reps)")
		refine   = flag.Int("refine", 0, "insert up to this many extra rates around each curve's saturation knee (iterated to a fixed point)")
		merge    = flag.String("merge", "", "merge shard JSONL files (comma-separated) instead of simulating")
		compact  = flag.Bool("cache-compact", false, "compact the -cache store (drop superseded/duplicate entries) and exit; run only while no campaign is writing to it")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to this file")
		workers  = flag.Int("workers", 0, "supervised fan-out: spawn this many local worker processes and coordinate them (restarts, heartbeats, work-stealing)")
		nShards  = flag.Int("dist-shards", 0, "shard count for -workers (0 = 4x workers, capped at the point count)")
		events   = flag.String("events", "", "write the coordinator's supervision event log to this file")
		worker   = flag.Bool("worker", false, "internal: serve shard leases on stdin/stdout (spawned by -workers or noccoord)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the campaign context: in-flight simulations
	// finish, sinks are flushed and closed, and partial results survive
	// (see the graceful-shutdown path below).
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	if *compact {
		if *cacheDir == "" {
			fatal(fmt.Errorf("-cache-compact needs -cache"))
		}
		cache, err := exp.OpenFileCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		dropped, err := cache.Compact()
		if err != nil {
			fatal(err)
		}
		if err := cache.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# cache: compacted, %d entries kept, %d lines dropped\n", cache.Len(), dropped)
		return
	}

	if *merge != "" {
		mergeShards(*merge, *out, *lat, *csv)
		return
	}

	flitRates, err := parseFloats(*rates)
	if err != nil {
		fatal(err)
	}
	nodes, err := parseInts(*ns)
	if err != nil {
		fatal(err)
	}
	kinds := make([]core.TopologyKind, 0)
	for _, kindName := range strings.Split(*topos, ",") {
		kinds = append(kinds, core.TopologyKind(strings.TrimSpace(kindName)))
	}

	campaign := exp.Campaign{
		Name:       "nocsweep",
		Topologies: kinds,
		Nodes:      nodes,
		Traffics:   []exp.TrafficSpec{{Kind: core.TrafficKind(*tk)}},
		FlitRates:  flitRates,
		Reps:       *reps,
		Seed:       *seed,
		Warmup:     *warmup,
		Measure:    *measure,
	}

	runner := exp.Runner{
		Parallel:   *parallel,
		StepShards: *stepPar,
		CITarget:   *ciTarget,
		MaxReps:    *maxReps,
		Refine:     *refine,
	}
	if *shard != "" {
		sh, err := parseShard(*shard)
		if err != nil {
			fatal(err)
		}
		runner.Shard = sh
	}
	if *cacheDir != "" {
		cache, err := exp.OpenFileCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := cache.ReportClose(os.Stderr); err != nil {
				fatal(err)
			}
		}()
		runner.Cache = cache
	}

	if *worker {
		// Worker mode: the campaign spec comes from this process's own
		// flags (the coordinator spawned us with the same ones); the
		// lease on stdin only picks the shard.
		if err := serveWorker(ctx, campaign, runner); err != nil {
			fatal(err)
		}
		return
	}
	if *workers > 0 {
		// Workers split the machine: unless -parallel pins a budget,
		// each worker gets an even share of GOMAXPROCS.
		perWorker := *parallel
		if perWorker <= 0 {
			perWorker = (runtime.GOMAXPROCS(0) + *workers - 1) / *workers
		}
		argv := workerArgv(*topos, *ns, *tk, *rates, *reps, *warmup, *measure, *seed, perWorker, *stepPar, *cacheDir)
		aggs, err := coordinate(ctx, campaign, runner, *workers, *nShards, argv, *out, *events, *sqlOut != "")
		if err != nil {
			fatal(err)
		}
		printTable(aggs, fmt.Sprintf("sweep (%d workers): N=%s, %s, reps=%d", *workers, *ns, *tk, *reps), *lat, *csv)
		return
	}

	var sinks []exp.Sink
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		outFile = f
		sinks = append(sinks, exp.NewJSONLWriter(f))
	}
	var sqlSink *exp.SQLiteSink
	if *sqlOut != "" {
		sqlSink = exp.NewSQLiteSink(*sqlOut)
		sinks = append(sinks, sqlSink)
	}

	// closeSinks flushes and closes every sink exactly once. It runs on
	// the success path AND on cancellation/error: an interrupted
	// campaign must still leave a well-formed JSONL prefix and a valid
	// SQLite archive of whatever completed, never a torn record.
	sinksClosed := false
	closeSinks := func() error {
		if sinksClosed {
			return nil
		}
		sinksClosed = true
		if outFile != nil {
			// A close error here means the results file is truncated;
			// exiting 0 would pass the corruption downstream.
			if err := outFile.Close(); err != nil {
				return err
			}
		}
		if sqlSink != nil {
			// The archive is assembled in memory and only hits disk here.
			if err := sqlSink.Close(); err != nil {
				return err
			}
		}
		return nil
	}

	aggs, err := runner.Run(ctx, campaign, sinks...)
	if cerr := closeSinks(); cerr != nil {
		fatal(cerr)
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "# interrupted: partial results flushed; sinks closed cleanly")
		os.Exit(130)
	}
	if err != nil {
		fatal(err)
	}

	printTable(aggs, fmt.Sprintf("sweep: N=%s, %s, reps=%d", *ns, *tk, *reps), *lat, *csv)

	if *sat {
		// Reuse the campaign's own scenario resolution (hot-spot
		// targets included) so the saturation search always probes
		// exactly what the table measured.
		pts, err := campaign.Points()
		if err != nil {
			fatal(err)
		}
		seen := map[string]bool{}
		for _, p := range pts {
			key := fmt.Sprintf("%s-%d", p.Topo, p.Nodes)
			if seen[key] {
				continue
			}
			seen[key] = true
			base := p.Scenario
			base.Seed = *seed
			plen := float64(base.Config.PacketLen)
			rate, err := core.FindSaturation(base, 1.0/plen, 0.05, 8)
			if err != nil {
				fatal(err)
			}
			topo, _, err := base.Build()
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "# %s measured saturation ≈ %.4f flits/cycle/source (analytic uniform bound %.4f)\n",
				key, rate*plen, analysis.UniformSaturationBound(topo))
		}
	}
}

// serveWorker runs the worker half of a supervised fan-out: the
// campaign spec is already resolved from this process's own flags (the
// coordinator spawns workers with the same campaign flags it was
// given), so leases on stdin only select shard slices of it.
func serveWorker(ctx context.Context, c exp.Campaign, base exp.Runner) error {
	return dist.ServeWorker(ctx, os.Stdin, os.Stdout, shardRunner(c, base),
		dist.WorkerOptions{ChaosSpec: os.Getenv(dist.ChaosEnv)})
}

// shardRunner adapts the campaign runner to the dist lease interface —
// shared by worker mode and the coordinator's inline degradation path,
// so a degraded shard runs exactly the code a worker would have run.
func shardRunner(c exp.Campaign, base exp.Runner) dist.ShardRunner {
	return func(ctx context.Context, lease dist.Lease, w io.Writer, progress func(done, total int)) error {
		r := base
		r.Shard = exp.Shard{Index: lease.Shard, Count: lease.Count}
		r.Progress = progress
		_, err := r.Run(ctx, c, exp.NewJSONLWriter(w))
		return err
	}
}

// coordinate runs the campaign as a supervised multi-process fan-out
// and returns the merged aggregates.
func coordinate(ctx context.Context, c exp.Campaign, base exp.Runner, workers, nShards int, argv []string, out, events string, sqlite bool) ([]exp.Aggregate, error) {
	if sqlite {
		return nil, fmt.Errorf("-sqlite is not supported with -workers; merge to JSONL and archive separately")
	}
	if base.CITarget > 0 || base.Refine > 0 {
		return nil, fmt.Errorf("-workers is incompatible with -ci-target and -refine (sharding precludes adaptive scheduling)")
	}
	pts, err := c.Points()
	if err != nil {
		return nil, err
	}
	shards := nShards
	if shards <= 0 {
		shards = 4 * workers
	}
	if shards > len(pts) {
		shards = len(pts)
	}
	if shards < 1 {
		shards = 1
	}

	var outW io.Writer
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return nil, err
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		outW = f
	}
	var evW io.Writer
	if events != "" {
		f, err := os.Create(events)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		evW = f
	}

	co, err := dist.New(dist.Options{
		Workers: workers,
		Shards:  shards,
		Launch:  &dist.LocalLauncher{Argv: argv, Env: os.Environ(), Stderr: os.Stderr},
		Inline:  shardRunner(c, base),
		Out:     outW,
		Events:  evW,
	})
	if err != nil {
		return nil, err
	}
	aggs, err := co.Run(ctx)
	fmt.Fprintf(os.Stderr, "# dist: %d shards on %d workers: %d restarts, %d deadline kills, %d steals, %d duplicate completions, %d inline runs\n",
		shards, workers,
		co.CountEvents(dist.EventRestart), co.CountEvents(dist.EventMiss),
		co.CountEvents(dist.EventSteal), co.CountEvents(dist.EventDuplicate),
		co.CountEvents(dist.EventInline))
	return aggs, err
}

// workerArgv reconstructs the canonical worker command line from the
// parsed campaign flags — rebuilding from values rather than filtering
// os.Args sidesteps every "-flag value" vs "-flag=value" ambiguity.
func workerArgv(topos, ns, tk, rates string, reps int, warmup, measure, seed uint64, perWorker, stepPar int, cacheDir string) []string {
	argv := []string{os.Args[0], "-worker",
		"-topo", topos, "-n", ns, "-traffic", tk, "-rates", rates,
		"-reps", strconv.Itoa(reps),
		"-warmup", strconv.FormatUint(warmup, 10),
		"-measure", strconv.FormatUint(measure, 10),
		"-seed", strconv.FormatUint(seed, 10),
		"-parallel", strconv.Itoa(perWorker),
		"-step-parallel", strconv.Itoa(stepPar),
	}
	if cacheDir != "" {
		argv = append(argv, "-cache", cacheDir)
	}
	return argv
}

// mergeShards concatenates shard JSONL streams: run records verbatim,
// summaries recomputed — the merged file is byte-identical to an
// unsharded run's output.
func mergeShards(files, out string, lat, csv bool) {
	var readers []io.Reader
	var closers []*os.File
	for _, name := range strings.Split(files, ",") {
		name = strings.TrimSpace(name)
		if out != "" && samePath(name, out) {
			fatal(fmt.Errorf("-out %s is also a merge input; it would be truncated before reading", out))
		}
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		readers = append(readers, f)
		closers = append(closers, f)
	}
	var w io.Writer
	var outFile *os.File
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		outFile = f
		w = f
	}
	aggs, err := exp.MergeRuns(readers, w)
	if err != nil {
		fatal(err)
	}
	for _, f := range closers {
		f.Close()
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fatal(err)
		}
	}
	printTable(aggs, fmt.Sprintf("merged %d shard streams", len(closers)), lat, csv)
}

// printTable renders aggregates as one series per (topology, nodes),
// with CI95 columns from the replications.
func printTable(aggs []exp.Aggregate, title string, lat, csv bool) {
	metric := "throughput (flits/cycle)"
	if lat {
		metric = "mean latency (cycles)"
	}
	tab := &core.Table{
		Title: fmt.Sprintf("%s: %s", title, metric),
		XName: "injection rate (flits/cycle/source)",
	}
	series := map[string]*stats.Series{}
	var order []string
	for _, a := range aggs {
		name := fmt.Sprintf("%s-%d", a.Topo, a.Nodes)
		s, ok := series[name]
		if !ok {
			s = &stats.Series{Name: name}
			series[name] = s
			order = append(order, name)
		}
		m := a.Throughput
		if lat {
			m = a.Latency
		}
		s.AppendCI(a.FlitRate, m.Mean, m.CI95)
	}
	for _, name := range order {
		tab.Add(series[name])
	}
	if csv {
		fmt.Print(tab.CSV())
	} else {
		fmt.Println(tab.Text())
	}
}

// samePath reports whether two names refer to the same file, by
// absolute path (existence not required).
func samePath(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

// parseShard parses "i/n".
func parseShard(s string) (exp.Shard, error) {
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return exp.Shard{}, fmt.Errorf("bad shard %q: want i/n", s)
	}
	i, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
	n, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err1 != nil || err2 != nil || n < 1 {
		return exp.Shard{}, fmt.Errorf("bad shard %q: want i/n", s)
	}
	return exp.Shard{Index: i, Count: n}, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad node count %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsweep:", err)
	os.Exit(1)
}
