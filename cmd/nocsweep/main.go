// Command nocsweep sweeps injection rate for one scenario family and
// prints a throughput/latency table (or CSV), plus the measured
// saturation point. It is the workhorse behind custom versions of the
// paper's Figures 6-11.
//
// Usage:
//
//	nocsweep -topo ring,spidergon,mesh -n 16 -traffic uniform \
//	         -rates 0.05,0.1,0.2,0.3,0.4 -csv
//	nocsweep -topo spidergon -n 16 -traffic hotspot -saturation
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gonoc/internal/analysis"
	"gonoc/internal/core"
	"gonoc/internal/stats"
)

func main() {
	var (
		topos   = flag.String("topo", "ring,spidergon,mesh", "comma-separated topology kinds")
		n       = flag.Int("n", 16, "number of nodes")
		tk      = flag.String("traffic", "uniform", "traffic: uniform|hotspot")
		rates   = flag.String("rates", "0.05,0.1,0.15,0.2,0.3,0.4,0.5", "per-source flits/cycle points")
		csv     = flag.Bool("csv", false, "CSV output")
		lat     = flag.Bool("latency", false, "report latency instead of throughput")
		sat     = flag.Bool("saturation", false, "also search the measured saturation rate per topology")
		warmup  = flag.Uint64("warmup", 1000, "warm-up cycles")
		measure = flag.Uint64("measure", 10000, "measured cycles")
		seed    = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	flitRates, err := parseFloats(*rates)
	if err != nil {
		fatal(err)
	}

	metric := "throughput (flits/cycle)"
	if *lat {
		metric = "mean latency (cycles)"
	}
	tab := &core.Table{
		Title: fmt.Sprintf("sweep: %s, N=%d, %s", metric, *n, *tk),
		XName: "injection rate (flits/cycle/source)",
	}

	for _, kindName := range strings.Split(*topos, ",") {
		kind := core.TopologyKind(strings.TrimSpace(kindName))
		base := core.NewScenario(kind, *n, core.TrafficKind(*tk), 0)
		base.Warmup, base.Measure, base.Seed = *warmup, *measure, *seed
		if base.Traffic == core.HotSpotTraffic {
			base.HotSpots = []int{core.SingleHotspot(kind, *n, false, 0, 0)}
		}
		plen := float64(base.Config.PacketLen)
		lambdas := make([]float64, len(flitRates))
		for i, fr := range flitRates {
			lambdas[i] = fr / plen
		}
		results, err := core.Sweep(base, lambdas)
		if err != nil {
			fatal(err)
		}
		s := &stats.Series{Name: string(kind)}
		for i, r := range results {
			y := r.Throughput
			if *lat {
				y = r.MeanLatency
			}
			s.Append(flitRates[i], y)
		}
		tab.Add(s)

		if *sat {
			rate, err := core.FindSaturation(base, 1.0/plen, 0.05, 8)
			if err != nil {
				fatal(err)
			}
			topo, _, err := base.Build()
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "# %s measured saturation ≈ %.4f flits/cycle/source (analytic uniform bound %.4f)\n",
				kind, rate*plen, analysis.UniformSaturationBound(topo))
		}
	}

	if *csv {
		fmt.Print(tab.CSV())
	} else {
		fmt.Println(tab.Text())
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocsweep:", err)
	os.Exit(1)
}
