// Designspace explores the parameters the paper tuned but did not have
// space to report: "Experiments have been performed by modifying the
// overall buffer capacity of nodes ... Results indicated that small
// buffer tuning have some marginal impact on the peak performances."
//
// The example quantifies that claim — output queue depth, input buffer
// depth and packet length ablations on the Spidergon — and adds the
// torus extension as a what-if fourth topology.
package main

import (
	"fmt"
	"log"

	"gonoc/internal/core"
)

const nodes = 16

func main() {
	fmt.Println("== output queue depth (paper default: 3 flits) ==")
	fmt.Printf("%-10s %12s %12s\n", "depth", "tput (f/c)", "latency")
	for _, depth := range []int{1, 2, 3, 4, 6, 12} {
		s := baseline()
		s.Config.OutBufCap = depth
		r := run(s)
		fmt.Printf("%-10d %12.3f %12.1f\n", depth, r.Throughput, r.MeanLatency)
	}
	fmt.Println("-> beyond a couple of flits, deeper output queues buy little:")
	fmt.Println("   'small buffer tuning has marginal impact on peak performance'.")
	fmt.Println()

	fmt.Println("== input buffer depth (paper default: 1 flit) ==")
	fmt.Printf("%-10s %12s %12s\n", "depth", "tput (f/c)", "latency")
	for _, depth := range []int{1, 2, 4} {
		s := baseline()
		s.Config.InBufCap = depth
		r := run(s)
		fmt.Printf("%-10d %12.3f %12.1f\n", depth, r.Throughput, r.MeanLatency)
	}
	fmt.Println()

	fmt.Println("== packet length (paper default: 6 flits), constant flit load ==")
	fmt.Printf("%-10s %12s %12s\n", "flits", "tput (f/c)", "latency")
	for _, plen := range []int{2, 4, 6, 8, 12} {
		s := baseline()
		s.Config.PacketLen = plen
		// Keep the offered flit rate fixed at 0.3 flits/cycle/source.
		s.Lambda = 0.3 / float64(plen)
		r := run(s)
		fmt.Printf("%-10d %12.3f %12.1f\n", plen, r.Throughput, r.MeanLatency)
	}
	fmt.Println()

	fmt.Println("== topology extension: 4x4 torus vs the paper's trio ==")
	fmt.Printf("%-12s %12s %12s %8s\n", "topology", "tput (f/c)", "latency", "links")
	for _, kind := range []core.TopologyKind{core.Ring, core.Spidergon, core.Mesh, core.Torus} {
		s := core.NewScenario(kind, nodes, core.UniformTraffic, 0.3/6)
		s.Warmup, s.Measure = 1000, 8000
		r := run(s)
		links := map[core.TopologyKind]int{core.Ring: 2 * nodes, core.Spidergon: 3 * nodes,
			core.Mesh: 48, core.Torus: 4 * nodes}[kind]
		fmt.Printf("%-12s %12.3f %12.1f %8d\n", kind, r.Throughput, r.MeanLatency, links)
	}
	fmt.Println("-> the torus buys throughput with 33% more links than Spidergon and")
	fmt.Println("   4 VCs of buffering per channel — the cost axis the paper optimises.")
}

func baseline() core.Scenario {
	s := core.NewScenario(core.Spidergon, nodes, core.UniformTraffic, 0.3/6)
	s.Warmup, s.Measure = 1000, 8000
	return s
}

func run(s core.Scenario) core.Result {
	r, err := core.Run(s)
	if err != nil {
		log.Fatal(err)
	}
	return r
}
