// Command campaign demonstrates the experiment-campaign layer
// (internal/exp): one declarative spec reproduces a Figure-8-style
// grid — throughput and latency under two hot-spot destinations
// (placement A) across Ring, Spidergon and Mesh — with replicated
// seeds and 95% confidence intervals, streaming every run to JSONL.
//
// Usage:
//
//	go run ./examples/campaign              # table on stdout
//	go run ./examples/campaign -out f8.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gonoc/internal/core"
	"gonoc/internal/exp"
)

func main() {
	var (
		out      = flag.String("out", "", "also write per-run and summary records as JSONL")
		reps     = flag.Int("reps", 3, "replications per grid point")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache", "", "directory for the content-addressed result cache")
		ciTarget = flag.Float64("ci-target", 0, "adaptive replication: target CI95/mean ratio (0 = fixed reps)")
	)
	flag.Parse()

	// The whole figure grid is one value: topologies × node counts ×
	// traffic × rates × replications. The reduced cycle counts keep the
	// demo interactive; raise Warmup/Measure for publication numbers.
	campaign := exp.Campaign{
		Name:       "figure8-demo",
		Topologies: []core.TopologyKind{core.Ring, core.Spidergon, core.Mesh},
		Nodes:      []int{16},
		Traffics: []exp.TrafficSpec{
			{Kind: core.HotSpotTraffic, Placement: core.PlacementA},
		},
		FlitRates: []float64{0.02, 0.05, 0.08, 0.11, 0.14},
		Reps:      *reps,
		Seed:      7,
		Warmup:    500,
		Measure:   5000,
	}

	var sinks []exp.Sink
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sinks = append(sinks, exp.NewJSONLWriter(f))
	}

	runner := exp.Runner{
		Parallel: *parallel,
		CITarget: *ciTarget,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	}
	if *cacheDir != "" {
		// With a warm cache a re-run of the same spec replays entirely
		// from disk: zero simulations.
		cache, err := exp.OpenFileCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := cache.ReportClose(os.Stderr); err != nil {
				fatal(err)
			}
		}()
		runner.Cache = cache
	}
	aggs, err := runner.Run(context.Background(), campaign, sinks...)
	if err != nil {
		fatal(err)
	}

	fmt.Println("Figure-8-style grid: two hot-spot targets (placement A), N=16")
	fmt.Printf("%-14s %9s %22s %22s\n", "topology", "flits/cyc", "throughput (±CI95)", "latency (±CI95)")
	for _, a := range aggs {
		fmt.Printf("%-14s %9.3f %13.4f ±%7.4f %13.2f ±%7.2f\n",
			fmt.Sprintf("%s-%d", a.Topo, a.Nodes), a.FlitRate,
			a.Throughput.Mean, a.Throughput.CI95,
			a.Latency.Mean, a.Latency.CI95)
	}
	if *out != "" {
		fmt.Printf("\nwrote per-run + summary records to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}
