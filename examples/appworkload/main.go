// Appworkload exercises the application-shaped traffic the paper's
// future work calls for ("specific traffic patterns originated by
// common applications"): a closed-loop master/slave (CPUs against a
// memory controller — the realistic version of the hot-spot scenario)
// and a bursty on/off streaming workload, both on the Spidergon and
// both compared against the 2D mesh.
package main

import (
	"fmt"
	"log"

	"gonoc/internal/analysis"
	"gonoc/internal/core"
	"gonoc/internal/noc"
	"gonoc/internal/routing"
	"gonoc/internal/sim"
	"gonoc/internal/stats"
	"gonoc/internal/topology"
	"gonoc/internal/traffic"
)

const nodes = 16

func main() {
	fmt.Println("== closed-loop master/slave (memory-controller) workload ==")
	fmt.Printf("%-12s %14s %14s %14s\n", "topology", "transactions", "round-trip", "p-from-masters")
	for _, kind := range []core.TopologyKind{core.Ring, core.Spidergon, core.Mesh} {
		net, k := build(kind)
		masters := make([]int, 0, nodes-1)
		for v := 1; v < nodes; v++ {
			masters = append(masters, v)
		}
		rr, err := traffic.NewRequestReply(k, net, masters, []int{0}, 0.004, 7)
		if err != nil {
			log.Fatal(err)
		}
		rr.Start()
		runFor(k, net, 30000)
		fmt.Printf("%-12s %14d %14.1f %14d\n",
			kind, rr.CompletedTransactions(), rr.RoundTrip().Mean(), rr.Requests())
	}
	fmt.Println("-> round trips pay the hot-spot path twice; topology shifts latency,")
	fmt.Println("   but the slave's interface still bounds transaction throughput.")
	fmt.Println()

	fmt.Println("== bursty on/off streaming vs smooth Poisson (same mean rate) ==")
	shape := traffic.OnOff{PeakRate: 0.12, OnMean: 80, OffMean: 400} // mean 0.02
	fmt.Printf("on/off shape: peak %.2f pkts/cycle, mean %.3f\n\n", shape.PeakRate, shape.MeanRate())
	fmt.Printf("%-12s %12s %12s %12s %12s\n", "topology", "smooth p95", "bursty p95", "smooth mean", "bursty mean")
	for _, kind := range []core.TopologyKind{core.Spidergon, core.Mesh} {
		sm, sp := poissonRun(kind, shape.MeanRate())
		bm, bp := burstyRun(kind, shape)
		fmt.Printf("%-12s %12.1f %12.1f %12.1f %12.1f\n", kind, sp, bp, sm, bm)
	}
	fmt.Println("-> equal mean load, very different tails: bursts stress the 3-flit")
	fmt.Println("   output queues, which is why the paper tunes buffers, not topology.")
	fmt.Println()

	fmt.Println("== cost model: the paper's energy/area argument quantified ==")
	cm := analysis.DefaultCostModel()
	tops := []topology.Topology{
		topology.MustRing(nodes), topology.MustSpidergon(nodes), topology.MustMesh(4, 4),
	}
	sums, err := analysis.CompareCosts(cm, tops, []int{2, 2, 1}, 3, 1, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %10s %12s %8s\n", "topology", "area", "E/packet", "degree")
	for _, s := range sums {
		fmt.Printf("%-16s %10.1f %12.2f %8d\n", s.Name, s.Area, s.EnergyPerPacket, s.MaxDegree)
	}
	fmt.Println("-> Spidergon: mesh-class energy per packet at constant degree 3.")
}

func build(kind core.TopologyKind) (*noc.Network, *sim.Kernel) {
	var top topology.Topology
	var alg routing.Algorithm
	switch kind {
	case core.Ring:
		r := topology.MustRing(nodes)
		top, alg = r, routing.NewRingRouting(r)
	case core.Spidergon:
		s := topology.MustSpidergon(nodes)
		top, alg = s, routing.NewSpidergonRouting(s)
	default:
		m := topology.MustMesh(4, 4)
		top, alg = m, routing.NewMeshXY(m)
	}
	net, err := noc.NewNetwork(top, alg, noc.DefaultConfig(), stats.NewCollector(0))
	if err != nil {
		log.Fatal(err)
	}
	return net, sim.NewKernel()
}

func runFor(k *sim.Kernel, net *noc.Network, cycles uint64) {
	tick := sim.NewTicker(k, 1)
	tick.OnTick(func(uint64) { net.Step() })
	tick.Start()
	k.RunUntil(sim.Time(cycles))
}

func poissonRun(kind core.TopologyKind, rate float64) (mean, p95 float64) {
	net, k := build(kind)
	g, err := traffic.NewGenerator(k, net, traffic.Uniform{N: nodes}, traffic.Poisson, rate, 11)
	if err != nil {
		log.Fatal(err)
	}
	g.Start()
	runFor(k, net, 60000)
	return net.Collector().MeanLatency(), net.Collector().LatencyQuantile(0.95)
}

func burstyRun(kind core.TopologyKind, shape traffic.OnOff) (mean, p95 float64) {
	net, k := build(kind)
	g, err := traffic.NewOnOffGenerator(k, net, traffic.Uniform{N: nodes}, shape, 11)
	if err != nil {
		log.Fatal(err)
	}
	g.Start()
	runFor(k, net, 60000)
	return net.Collector().MeanLatency(), net.Collector().LatencyQuantile(0.95)
}
