// Quickstart: simulate a 16-node Spidergon NoC under uniform traffic
// and print its throughput and latency — the minimal end-to-end use of
// the library.
package main

import (
	"fmt"
	"log"

	"gonoc/internal/core"
)

func main() {
	// A scenario bundles topology, traffic and the paper's node
	// geometry (6-flit packets, 3-flit output queues, 1-flit input
	// buffers, Poisson sources).
	s := core.NewScenario(core.Spidergon, 16, core.UniformTraffic, 0.02)
	s.Warmup = 1000   // cycles excluded from measurement
	s.Measure = 10000 // measured cycles
	s.Seed = 42       // reruns reproduce results exactly

	r, err := core.Run(s)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("topology        %s\n", r.TopologyName)
	fmt.Printf("offered load    %.3f flits/cycle\n", r.OfferedFlitRate)
	fmt.Printf("throughput      %.3f flits/cycle\n", r.Throughput)
	fmt.Printf("mean latency    %.1f cycles\n", r.MeanLatency)
	fmt.Printf("mean hops       %.2f (analytic E[D] = 2.60)\n", r.MeanHops)
	fmt.Printf("delivered       %d packets\n", r.EjectedPackets)
}
