// Hotspot reproduces the experiment of Sections 3.1.1-3.1.2 of the
// paper interactively: it sweeps the injection rate under single and
// double hot-spot destinations on Ring, Spidergon and 2D Mesh, and
// shows that the saturation throughput is pinned by the destination
// node — ~1 flit/cycle per hot-spot — whatever the topology. This is
// the paper's argument for Spidergon: under the traffic SoCs actually
// exhibit (traffic converging on a memory interface), the cheap
// symmetric topology matches the expensive one.
package main

import (
	"fmt"
	"log"

	"gonoc/internal/analysis"
	"gonoc/internal/core"
)

const (
	nodes     = 16
	packetLen = 6
)

func main() {
	fmt.Println("== single hot-spot (paper fig. 6-7) ==")
	sweep(1)
	fmt.Println()
	fmt.Println("== double hot-spot, placement A (paper fig. 8-9) ==")
	sweep(2)
}

func sweep(k int) {
	sources := nodes - k
	lamSat := analysis.HotspotSaturationLambda(k, 1, sources, packetLen)
	fmt.Printf("analytic saturation: %.5f packets/cycle/source (%.4f flits/cycle)\n\n",
		lamSat, lamSat*packetLen)
	fmt.Printf("%-10s", "load/sat")
	for _, kind := range []core.TopologyKind{core.Ring, core.Spidergon, core.Mesh} {
		fmt.Printf("  %-22s", kind)
	}
	fmt.Println()
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5} {
		fmt.Printf("%-10.2f", frac)
		for _, kind := range []core.TopologyKind{core.Ring, core.Spidergon, core.Mesh} {
			var targets []int
			var err error
			if k == 1 {
				targets = []int{core.SingleHotspot(kind, nodes, false, 0, 0)}
			} else {
				targets, err = core.DoubleHotspots(kind, nodes, core.PlacementA, 0, 0)
				if err != nil {
					log.Fatal(err)
				}
			}
			s := core.NewScenario(kind, nodes, core.HotSpotTraffic, frac*lamSat)
			s.HotSpots = targets
			s.Warmup, s.Measure = 1000, 10000
			r, err := core.Run(s)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  tput %5.3f lat %6.1f ", r.Throughput, r.MeanLatency)
		}
		fmt.Println()
	}
	fmt.Printf("\n-> every topology saturates at ≈ %d flit/cycle: the bottleneck is the\n", k)
	fmt.Println("   destination node, not the NoC fabric (the paper's central hot-spot result).")
}
