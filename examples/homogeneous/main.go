// Homogeneous reproduces Section 3.1.3 of the paper: uniform random
// sources and destinations, where the communication fabric itself is
// the bottleneck. It sweeps per-source injection rate over Ring,
// Spidergon and 2D Mesh at two sizes, prints throughput and latency
// curves, and compares the observed saturation against the analytic
// bisection/channel-load bounds.
package main

import (
	"fmt"
	"log"

	"gonoc/internal/analysis"
	"gonoc/internal/core"
	"gonoc/internal/topology"
)

func main() {
	for _, n := range []int{16, 32} {
		fmt.Printf("== N = %d nodes ==\n", n)
		bounds(n)
		fmt.Printf("\n%-28s", "inj rate (flits/cyc/src)")
		rates := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
		for _, r := range rates {
			fmt.Printf("  %8.2f", r)
		}
		fmt.Println()
		for _, kind := range []core.TopologyKind{core.Ring, core.Spidergon, core.Mesh} {
			fmt.Printf("%-28s", fmt.Sprintf("%s throughput", kind))
			for _, rate := range rates {
				r := run(kind, n, rate)
				fmt.Printf("  %8.3f", r.Throughput)
			}
			fmt.Println()
			fmt.Printf("%-28s", fmt.Sprintf("%s latency", kind))
			for _, rate := range rates {
				r := run(kind, n, rate)
				fmt.Printf("  %8.1f", r.MeanLatency)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("-> Ring saturates first and delivers the least; Spidergon tracks the")
	fmt.Println("   mesh until high load, at a third fewer links than a square mesh of")
	fmt.Println("   equal size would need for its best case (paper fig. 10-11).")
}

func run(kind core.TopologyKind, n int, flitRate float64) core.Result {
	s := core.NewScenario(kind, n, core.UniformTraffic, 0)
	s.Lambda = flitRate / float64(s.Config.PacketLen)
	s.Warmup, s.Measure = 1000, 8000
	r, err := core.Run(s)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func bounds(n int) {
	ring := topology.MustRing(n)
	sg := topology.MustSpidergon(n)
	cols, rows := analysis.IdealMeshDims(n)
	mesh := topology.MustMesh(cols, rows)
	fmt.Printf("analytic per-node saturation bounds (flits/cycle/node):")
	fmt.Printf("  ring %.3f, spidergon %.3f, mesh %.3f\n",
		analysis.UniformSaturationBound(ring),
		analysis.UniformSaturationBound(sg),
		analysis.UniformSaturationBound(mesh))
}
