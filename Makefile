# Targets mirror .github/workflows/ci.yml step for step, so local runs
# and CI stay identical.

# bash for pipefail in the bench target; /bin/sh (dash) lacks it.
SHELL := /bin/bash

GO ?= go

.PHONY: all build test vet lint fmt fmt-check cover bench bench-check bench-alloc bench-baseline bench-speedup race-parallel race-parallel-4 golden-gogcoff telemetry-check dist-chaos ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race -shuffle on ./...

vet:
	$(GO) vet ./...

# lint mirrors CI's staticcheck step. The tool needs network access to
# install, so offline checkouts degrade to a skip message instead of a
# failure — CI always runs it.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not on PATH; skipped (CI installs and runs it)"; \
	fi

# cover mirrors CI's coverage step: the race-tested coverage profile
# plus the total, which CI also prints into the job summary and uploads
# as an artifact.
cover:
	$(GO) test -race -shuffle on -covermode=atomic -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

bench:
	set -o pipefail; $(GO) test -json -bench=. -benchtime=1x -run='^$$' ./... | tee bench-smoke.json

# bench-check is the tracked perf-regression gate: it re-runs the
# deterministic PerfGate benchmarks and fails when any gated work
# counter regressed >15% against the committed bench-baseline.json.
bench-check:
	set -o pipefail; $(GO) test -json -bench=PerfGate -benchtime=1x -run='^$$' . | tee bench-gate.json | $(GO) run ./cmd/benchgate -baseline bench-baseline.json

# bench-alloc runs the same deterministic gate with -benchmem, so the
# comparison artifact (bench-alloc.json) additionally carries Go's
# allocs/op and B/op columns next to the gated steady-state
# allocs/packet and bytes/packet metrics. The artifact is written by
# tee before benchgate judges it, so it survives a failing gate — CI
# uploads it either way.
bench-alloc:
	set -o pipefail; $(GO) test -json -bench=PerfGate -benchmem -benchtime=1x -run='^$$' . | tee bench-alloc.json | $(GO) run ./cmd/benchgate -baseline bench-baseline.json

# bench-baseline refreshes the committed baseline after an intentional
# perf change; commit the resulting bench-baseline.json.
bench-baseline:
	set -o pipefail; $(GO) test -json -bench=PerfGate -benchtime=1x -run='^$$' . | $(GO) run ./cmd/benchgate -baseline bench-baseline.json -update

# bench-speedup re-runs just the domain-decomposed knee point and keeps
# its raw output (bench-speedup.json): the 'speedup' metric there is the
# measured intra-scenario wall-clock gain of -step-parallel over the
# serial engine on THIS host (report-only — it scales with core count,
# so it is never gated). The run also appends one labeled record to the
# tracked BENCH_speedup.json history (label via SPEEDUP_LABEL, default
# "local"), so multi-core hosts accumulate a per-commit speedup
# trajectory; commit the file when the record is worth keeping. CI
# uploads both next to bench-alloc.json.
bench-speedup:
	set -o pipefail; $(GO) test -json -bench='PerfGate/knee-parallel' -benchtime=1x -run='^$$' . \
		| tee bench-speedup.json \
		| $(GO) run ./cmd/benchgate -speedup-log BENCH_speedup.json -label "$${SPEEDUP_LABEL:-local}"

# golden-gogcoff re-runs the cross-engine golden matrix's knee points
# (every topology and switching mode at the near-saturation load) with
# the garbage collector disabled. The handle-based arena keeps freed
# packet records reachable from live slices, so a use-after-recycle
# that GC timing might otherwise mask (or crash on) instead shows up
# as an engine divergence here, where nothing is ever collected or
# moved for the whole run.
golden-gogcoff:
	GOGC=off $(GO) test -count=1 -run 'TestGoldenCrossEngineMatrix/.*/knee' ./internal/core/

# race-parallel runs the parallel-engine golden/fuzz suites under the
# race detector with their bounded cycle counts — the determinism AND
# memory-model proof of the domain-decomposed Step. The Credit pattern
# picks up the credit-snapshot fuzz seeds and the zero-credit storm
# alongside the Parallel-named goldens.
race-parallel:
	$(GO) test -race -run 'Parallel|Credit' ./internal/noc/ ./internal/core/

# race-parallel-4 re-runs the same matrix with GOMAXPROCS pinned to 4:
# on a multi-core host the fused engine's workers genuinely race the
# coordinator (spinning on the barrier instead of parking), which a
# single-P run cannot exercise.
race-parallel-4:
	GOMAXPROCS=4 $(GO) test -race -run 'Parallel|Credit' ./internal/noc/ ./internal/core/

# telemetry-check proves the FTDC-style capture end to end on every
# push: a bounded knee run (the PerfGate knee workload: mesh-8x8
# uniform at 90% of the 0.5 flits/cycle/source analytic saturation
# bound) with telemetry on, decoded and diffed against the committed
# golden summary, then re-encoded byte-for-byte by noctsd roundtrip.
telemetry-check:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/nocsim -topo mesh -n 64 -traffic uniform -flitrate 0.45 \
		-warmup 300 -cycles 3000 -seed 1 -telemetry "$$tmp/knee.tsd" >/dev/null; \
	$(GO) run ./cmd/noctsd summary "$$tmp/knee.tsd" > "$$tmp/summary.txt"; \
	diff -u testdata/telemetry-knee-summary.golden "$$tmp/summary.txt"; \
	$(GO) run ./cmd/noctsd roundtrip "$$tmp/knee.tsd"

# dist-chaos runs the distributed-coordinator supervision suite twice
# under the race detector: real subprocess workers SIGKILLed mid-shard,
# hung past the heartbeat deadline and emitting torn shard files, with
# the merged stream checked byte-for-byte against the serial golden.
# Coordinator event logs land in dist-logs/ (appended across runs), the
# artifact CI uploads when this fails.
# DIST_LOG_DIR is absolute: the tests run with the package directory
# as cwd, but the artifact path must be repo-relative for CI's upload.
dist-chaos:
	DIST_LOG_DIR=$(CURDIR)/dist-logs $(GO) test -race -count=2 -timeout 8m ./internal/dist/

# ci runs bench-alloc rather than bench-check: it is the same gate
# against the same baseline, with -benchmem columns added for free.
# cover re-runs the race suite with -coverprofile, exactly as CI's
# coverage step does.
ci: build vet lint fmt-check cover race-parallel race-parallel-4 golden-gogcoff telemetry-check dist-chaos bench bench-alloc bench-speedup
