# Targets mirror .github/workflows/ci.yml step for step, so local runs
# and CI stay identical.

GO ?= go

.PHONY: all build test vet fmt fmt-check bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build vet fmt-check test bench
