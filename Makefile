# Targets mirror .github/workflows/ci.yml step for step, so local runs
# and CI stay identical.

# bash for pipefail in the bench target; /bin/sh (dash) lacks it.
SHELL := /bin/bash

GO ?= go

.PHONY: all build test vet fmt fmt-check bench bench-check bench-alloc bench-baseline ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race -shuffle on ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

bench:
	set -o pipefail; $(GO) test -json -bench=. -benchtime=1x -run='^$$' ./... | tee bench-smoke.json

# bench-check is the tracked perf-regression gate: it re-runs the
# deterministic PerfGate benchmarks and fails when any gated work
# counter regressed >15% against the committed bench-baseline.json.
bench-check:
	set -o pipefail; $(GO) test -json -bench=PerfGate -benchtime=1x -run='^$$' . | tee bench-gate.json | $(GO) run ./cmd/benchgate -baseline bench-baseline.json

# bench-alloc runs the same deterministic gate with -benchmem, so the
# comparison artifact (bench-alloc.json) additionally carries Go's
# allocs/op and B/op columns next to the gated steady-state
# allocs/packet and bytes/packet metrics. The artifact is written by
# tee before benchgate judges it, so it survives a failing gate — CI
# uploads it either way.
bench-alloc:
	set -o pipefail; $(GO) test -json -bench=PerfGate -benchmem -benchtime=1x -run='^$$' . | tee bench-alloc.json | $(GO) run ./cmd/benchgate -baseline bench-baseline.json

# bench-baseline refreshes the committed baseline after an intentional
# perf change; commit the resulting bench-baseline.json.
bench-baseline:
	set -o pipefail; $(GO) test -json -bench=PerfGate -benchtime=1x -run='^$$' . | $(GO) run ./cmd/benchgate -baseline bench-baseline.json -update

# ci runs bench-alloc rather than bench-check: it is the same gate
# against the same baseline, with -benchmem columns added for free.
ci: build vet fmt-check test bench bench-alloc
