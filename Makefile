# Targets mirror .github/workflows/ci.yml step for step, so local runs
# and CI stay identical.

# bash for pipefail in the bench target; /bin/sh (dash) lacks it.
SHELL := /bin/bash

GO ?= go

.PHONY: all build test vet fmt fmt-check bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race -shuffle on ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

bench:
	set -o pipefail; $(GO) test -json -bench=. -benchtime=1x -run='^$$' ./... | tee bench-smoke.json

ci: build vet fmt-check test bench
